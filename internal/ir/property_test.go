package ir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property suite over the partition algebra: the scale-free analyses lean
// on a handful of invariants (sub-stores stay inside parents, identity
// tilings partition disjointly and cover, LocalExtents agrees with
// SubRect), checked here on randomized partitions.

type partCase struct {
	part   Partition
	parent Rect
}

func randomTiling(rng *rand.Rand) partCase {
	rank := 1 + rng.Intn(2)
	shape := make([]int, rank)
	view := make([]int, rank)
	tile := make([]int, rank)
	off := make([]int, rank)
	stride := make([]int, rank)
	colorsLo := make(Point, rank)
	colorsHi := make(Point, rank)
	for d := 0; d < rank; d++ {
		shape[d] = 4 + rng.Intn(20)
		stride[d] = 1 + rng.Intn(2)
		off[d] = rng.Intn(3)
		maxView := (shape[d] - off[d] + stride[d] - 1) / stride[d]
		if maxView < 1 {
			maxView = 1
		}
		view[d] = 1 + rng.Intn(maxView)
		tile[d] = 1 + rng.Intn(view[d])
		colorsHi[d] = int((view[d] + tile[d] - 1) / tile[d])
		if extra := rng.Intn(2); extra == 1 {
			colorsHi[d]++ // over-provisioned color space: empty tiles
		}
	}
	return partCase{
		part:   NewTiling(Rect{Lo: colorsLo, Hi: colorsHi}, view, tile, off, stride, nil),
		parent: RectFromShape(shape),
	}
}

func TestSubRectInsideParent(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pc := randomTiling(rng)
		ok := true
		pc.part.ColorSpace().Each(func(c Point) {
			r := pc.part.SubRect(c, pc.parent)
			if !r.Empty() && !pc.parent.ContainsRect(r) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityTilesDisjoint(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pc := randomTiling(rng)
		colors := pc.part.ColorSpace().Points()
		for i := 0; i < len(colors); i++ {
			for j := i + 1; j < len(colors); j++ {
				a := pc.part.SubRect(colors[i], pc.parent)
				b := pc.part.SubRect(colors[j], pc.parent)
				if a.Overlaps(b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalExtentsMatchSubRect(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pc := randomTiling(rng)
		tp := pc.part.(*TilingPart)
		ok := true
		pc.part.ColorSpace().Each(func(c Point) {
			ext := pc.part.LocalExtents(c, pc.parent.Extents())
			r := pc.part.SubRect(c, pc.parent)
			// The number of accessed elements per dim follows from the
			// bounding box and the stride.
			for d := range ext {
				span := r.Hi[d] - r.Lo[d]
				var fromBox int
				if span <= 0 {
					fromBox = 0
				} else {
					fromBox = (span-1)/tp.Stride[d] + 1
				}
				if ext[d] != fromBox {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCoversImpliesUnionIsParent(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pc := randomTiling(rng)
		if !pc.part.Covers(pc.parent) {
			return true // nothing claimed
		}
		covered := 0
		pc.part.ColorSpace().Each(func(c Point) {
			covered += pc.part.SubRect(c, pc.parent).Size()
		})
		// Identity-projection tiles are disjoint, so sizes add up.
		return covered == pc.parent.Size()
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualityIsFingerprintEquality(t *testing.T) {
	fn := func(s1, s2 int64) bool {
		a := randomTiling(rand.New(rand.NewSource(s1))).part
		b := randomTiling(rand.New(rand.NewSource(s2))).part
		return a.Equal(b) == (a.Fingerprint() == b.Fingerprint())
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestCanonicalRenamingInvariance: the canonical form is invariant under
// store renaming (alpha-equivalence) and sensitive to structural change.
func TestCanonicalRenamingInvariance(t *testing.T) {
	launch := MakeRect(Point{0}, Point{4})
	part := func() Partition {
		return NewTiling(launch, []int{16}, []int{4}, []int{0}, nil, nil)
	}
	build := func(f *Factory, swapPriv bool) []*Task {
		s := make([]*Store, 4)
		for i := range s {
			s[i] = f.NewStore("s", []int{16})
		}
		priv := Read
		if swapPriv {
			priv = ReadWrite
		}
		return []*Task{
			{Name: "a", Launch: launch, Args: []Arg{{Store: s[0], Part: part(), Priv: priv}, {Store: s[1], Part: part(), Priv: Write}}},
			{Name: "b", Launch: launch, Args: []Arg{{Store: s[1], Part: part(), Priv: Read}, {Store: s[2], Part: part(), Priv: Write}}},
			{Name: "a", Launch: launch, Args: []Arg{{Store: s[2], Part: part(), Priv: Read}, {Store: s[3], Part: part(), Priv: Write}}},
		}
	}
	var f1, f2 Factory
	// Drain some IDs from f2 so the absolute store IDs differ.
	for i := 0; i < 17; i++ {
		f2.NewStore("pad", []int{1})
	}
	if Canonicalize(build(&f1, false), nil) != Canonicalize(build(&f2, false), nil) {
		t.Fatal("canonical form must be invariant under store renaming")
	}
	if Canonicalize(build(&f1, false), nil) == Canonicalize(build(&f1, true), nil) {
		t.Fatal("canonical form must be sensitive to privilege changes")
	}
	facts := func(s *Store) string { return "live" }
	deadFacts := func(s *Store) string { return "dead" }
	if Canonicalize(build(&f1, false), facts) == Canonicalize(build(&f1, false), deadFacts) {
		t.Fatal("canonical form must include caller facts")
	}
}

// TestPrivilegePredicates pins the R/W/Rd helper semantics.
func TestPrivilegePredicates(t *testing.T) {
	cases := []struct {
		p       Privilege
		r, w, d bool
	}{
		{Read, true, false, false},
		{Write, false, true, false},
		{ReadWrite, true, true, false},
		{Reduce, false, false, true},
	}
	for _, c := range cases {
		if c.p.Reads() != c.r || c.p.Writes() != c.w || c.p.Reduces() != c.d {
			t.Fatalf("privilege %v predicates wrong", c.p)
		}
	}
}

package ir

import "testing"

// TestShardBlockPartitionsExtent: blocks tile the extent exactly — in
// order, non-overlapping, covering — for divisible and ragged extents,
// and ShardOf agrees with the block containing each coordinate.
func TestShardBlockPartitionsExtent(t *testing.T) {
	for _, tc := range []struct{ shards, extent int }{
		{1, 7}, {2, 8}, {3, 8}, {4, 10}, {8, 5}, {4, 0},
	} {
		prev := 0
		for s := 0; s < tc.shards; s++ {
			lo, hi := ShardBlock(s, tc.shards, tc.extent)
			if lo != prev {
				t.Fatalf("shards=%d extent=%d: block %d starts at %d, want %d", tc.shards, tc.extent, s, lo, prev)
			}
			if hi < lo || hi > tc.extent {
				t.Fatalf("shards=%d extent=%d: block %d = [%d,%d) out of range", tc.shards, tc.extent, s, lo, hi)
			}
			for x := lo; x < hi; x++ {
				if got := ShardOf(x, tc.shards, tc.extent); got != s {
					t.Fatalf("shards=%d extent=%d: ShardOf(%d) = %d, want %d", tc.shards, tc.extent, x, got, s)
				}
			}
			prev = hi
		}
		if prev != tc.extent {
			t.Fatalf("shards=%d extent=%d: blocks cover %d", tc.shards, tc.extent, prev)
		}
	}
}

// TestStoreShardingAndGenerations: stores carry their shard count and a
// generation that only Reshard advances.
func TestStoreShardingAndGenerations(t *testing.T) {
	var f Factory
	s := f.NewStore("s", []int{12})
	if s.ShardCount() != 1 || s.ShardGen() != 0 {
		t.Fatalf("fresh store sharding = %d/%d, want 1/0", s.ShardCount(), s.ShardGen())
	}
	s.SetShards(4)
	if s.ShardCount() != 4 || s.ShardGen() != 0 {
		t.Fatalf("SetShards changed the generation: %d/%d", s.ShardCount(), s.ShardGen())
	}
	if lo, hi := s.ShardBlock(1); lo != 3 || hi != 6 {
		t.Fatalf("ShardBlock(1) = [%d,%d), want [3,6)", lo, hi)
	}
	s.Reshard(2)
	if s.ShardCount() != 2 || s.ShardGen() != 1 {
		t.Fatalf("Reshard: %d/%d, want 2/1", s.ShardCount(), s.ShardGen())
	}
	if sh := s.Shard(); !sh.Active() || sh.Count != 2 || sh.Gen != 1 {
		t.Fatalf("Shard() = %+v", sh)
	}
}

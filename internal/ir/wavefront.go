package ir

// Wavefront scheduling metadata. The sharded runtime (internal/legion)
// relaxes its stage-barrier drain into a per-(shard, stage) dependence DAG:
// a shard's stage k+1 waits only on its own stage k plus the specific
// neighbor halo sends it consumes, so one shard can run several stages
// ahead of another wherever no dependence edge connects them. The types
// here are the runtime-independent half of that plan: the dependence
// records a drained group carries per stage, and the flat-offset spans the
// scheduler intersects to turn a record into concrete cross-shard edges.
//
// Spans are deliberately conservative: a span is the tight [Lo, Hi) flat
// interval bounding every element one shard of one task argument touches,
// so two spans that do not overlap provably touch disjoint data, while
// overlapping spans may or may not conflict. The scheduler only ever uses
// non-overlap to *remove* edges, so conservatism costs pipelining, never
// correctness.

// Span is a half-open interval [Lo, Hi) of flat element offsets into one
// store's canonical layout. The zero Span is empty.
type Span struct {
	Lo, Hi int
}

// Empty reports whether the span covers no elements.
func (s Span) Empty() bool { return s.Hi <= s.Lo }

// Overlaps reports whether two spans share at least one element. Empty
// spans overlap nothing.
func (s Span) Overlaps(o Span) bool {
	return !s.Empty() && !o.Empty() && s.Lo < o.Hi && o.Lo < s.Hi
}

// Union returns the smallest span covering both inputs (empty inputs are
// ignored).
func (s Span) Union(o Span) Span {
	if s.Empty() {
		return o
	}
	if o.Empty() {
		return s
	}
	if o.Lo < s.Lo {
		s.Lo = o.Lo
	}
	if o.Hi > s.Hi {
		s.Hi = o.Hi
	}
	return s
}

// DepKind classifies one dependence record of a drained shard group.
type DepKind int

const (
	// DepPointwise is a dependence through structurally equal partitions:
	// data flows point-wise, so shard blocks exchange nothing and the
	// consumer needs no cross-shard edge (its own-shard chain suffices).
	DepPointwise DepKind = iota
	// DepHalo is a read-after-write whose partitions misalign: the
	// consumer's shard footprint reaches into neighbor shards of the
	// producer, and the edge is materialized as a first-class
	// halo-exchange node in the wavefront DAG.
	DepHalo
	// DepAnti is a write-after-read (or write-after-write) whose
	// partitions misalign: ordering is required but no data travels, so
	// the edge is direct (no halo node).
	DepAnti
)

// String implements fmt.Stringer.
func (k DepKind) String() string {
	switch k {
	case DepPointwise:
		return "pointwise"
	case DepHalo:
		return "halo"
	case DepAnti:
		return "anti"
	default:
		return "DepKind(?)"
	}
}

// StageDep is one dependence record on a drained group's plan: entry Cons
// (by index into the group's task list) depends on entry Prod through the
// named store. The scheduler resolves it into per-shard edges by
// intersecting the two entries' per-shard spans on that store; Kind
// selects whether a halo-exchange node is interposed.
type StageDep struct {
	Prod, Cons int
	Store      StoreID
	Kind       DepKind
}

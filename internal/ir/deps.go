package ir

// This file implements the point-task dependence definitions of paper §4.1
// (Definitions 1–3). The fusion engine never calls these — materializing
// dependence maps scales with the number of processors — but they define
// the ground truth that the scale-free fusion constraints must be sound
// against, and the property-based test suite checks the constraints against
// them on randomized task windows.

// PointDep reports whether point task t2^(p2) depends on point task
// t1^(p1), where t1 was issued before t2 (Definition 1). A dependence
// exists if some pair of sub-stores with the same parent intersects and the
// privilege combination is a true, anti, or reduction dependence.
func PointDep(t1 *Task, p1 Point, t2 *Task, p2 Point) bool {
	for _, a1 := range t1.Args {
		for _, a2 := range t2.Args {
			if a1.Store != a2.Store {
				continue
			}
			parent := a1.Store.Bounds()
			s1 := a1.Part.SubRect(p1, parent)
			s2 := a2.Part.SubRect(p2, parent)
			if !s1.Overlaps(s2) {
				continue
			}
			if argsConflict(a1, a2) {
				return true
			}
		}
	}
	return false
}

// argsConflict implements the privilege clauses of Definition 1 plus the
// "both read or both reduce with the same operator" exemption.
func argsConflict(a1, a2 Arg) bool {
	// true-dep: W(T1) ∧ (R ∨ W ∨ Rd)(T2)
	if a1.Priv.Writes() && (a2.Priv.Reads() || a2.Priv.Writes() || a2.Priv.Reduces()) {
		return true
	}
	// anti-dep: R(T1) ∧ (W ∨ Rd)(T2)
	if a1.Priv.Reads() && (a2.Priv.Writes() || a2.Priv.Reduces()) {
		return true
	}
	// reduction-dep: Rd(T1) ∧ (R ∨ W)(T2); two reductions conflict only
	// when their operators differ.
	if a1.Priv.Reduces() {
		if a2.Priv.Reads() || a2.Priv.Writes() {
			return true
		}
		if a2.Priv.Reduces() && a1.Red != a2.Red {
			return true
		}
	}
	return false
}

// DependenceMap materializes D(T1, T2) of Definition 2: for every point p
// of T1's launch domain, the set of points of T2's launch domain whose
// point task depends on T1^p. Exponential in machine size by design; tests
// only.
func DependenceMap(t1, t2 *Task) map[string][]Point {
	m := make(map[string][]Point)
	t1.Launch.Each(func(p1 Point) {
		var deps []Point
		t2.Launch.Each(func(p2 Point) {
			if PointDep(t1, p1, t2, p2) {
				deps = append(deps, p2)
			}
		})
		m[p1.String()] = deps
	})
	return m
}

// PointwiseFusible reports Definition 3 directly: T1 and T2 are fusible iff
// for all p, D(T1,T2)[p] ⊆ {p}. Used by tests to validate the scale-free
// constraints in internal/core.
func PointwiseFusible(t1, t2 *Task) bool {
	if !t1.Launch.Equal(t2.Launch) {
		return false
	}
	ok := true
	t1.Launch.Each(func(p1 Point) {
		if !ok {
			return
		}
		t2.Launch.Each(func(p2 Point) {
			if !ok || p1.Equal(p2) {
				return
			}
			if PointDep(t1, p1, t2, p2) {
				ok = false
			}
		})
	})
	return ok
}

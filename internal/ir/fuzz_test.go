package ir_test

// Fuzz harness for the control-stream wire decoders. Every rank feeds
// parent-supplied bytes straight into DecodeTask (and the dependence and
// span codecs), so the decoders are a trust boundary: malformed or
// truncated input must come back as an error — never a panic, and never
// an allocation sized by an attacker-controlled count rather than the
// input length (rbuf.count caps every count against the bytes actually
// present). The committed seed corpus under
// testdata/fuzz/FuzzDecodeStream starts the exploration from valid
// encodings plus canonical corruptions of them.

import (
	"testing"

	"diffuse/internal/ir"
	"diffuse/internal/kir"
)

func FuzzDecodeStream(f *testing.F) {
	// Seeds: a realistic task encoding plus edge shapes. The corpus files
	// add valid encodings with tiling partitions and corrupted variants.
	factory := &ir.Factory{}
	store := factory.NewStore("s", []int{16})
	task := &ir.Task{
		Name:   "seed",
		Launch: ir.MakeRect(ir.Point{0}, ir.Point{4}),
		Seq:    7,
		Args: []ir.Arg{{
			Store: store,
			Part:  ir.ReplicateOver(ir.MakeRect(ir.Point{0}, ir.Point{4})),
			Priv:  ir.ReadWrite,
		}},
	}
	if enc, err := ir.EncodeTask(task, -1); err == nil {
		f.Add(enc)
		f.Add(enc[:len(enc)/2]) // truncated mid-structure
	}
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0}) // version ok, flags, then nothing

	resolveStore := func(ir.StoreID) (*ir.Store, error) { return store, nil }
	resolveKernel := func(int64, string) (*kir.Kernel, error) { return nil, nil }

	f.Fuzz(func(t *testing.T, data []byte) {
		// The decoders must return an error or a well-formed value; the
		// fuzzer itself catches panics and runaway allocation.
		dec, err := ir.DecodeTask(data, resolveStore, resolveKernel)
		if err == nil {
			// A successfully decoded task must survive the round trip the
			// distributed runtime depends on: re-encoding cannot fail, and
			// the re-encoded bytes must decode again.
			reenc, err := ir.EncodeTask(dec, -1)
			if err != nil {
				t.Fatalf("decoded task does not re-encode: %v", err)
			}
			if _, err := ir.DecodeTask(reenc, resolveStore, resolveKernel); err != nil {
				t.Fatalf("re-encoded task does not decode: %v", err)
			}
		}

		rest := data
		if _, r, err := ir.DecodeStageDep(rest); err == nil {
			rest = r
		}
		if _, r, err := ir.DecodeSpan(rest); err == nil {
			rest = r
		}
		_ = rest
	})
}

package ir

import (
	"fmt"
	"sync/atomic"

	"diffuse/internal/kir"
)

// DType re-exports the element-type enumeration stores are typed with.
type DType = kir.DType

// Element types (aliases of the kir constants, so libraries touching only
// the data model need not import kir).
const (
	F64 = kir.F64
	F32 = kir.F32
	I32 = kir.I32
)

// StoreID uniquely identifies a store within a Factory.
type StoreID int64

// Store is a distributed array in Diffuse's data model (paper §3.1). A store
// has a unique ID and a rectangular shape; it is partitioned across the
// machine into sub-stores by Partition objects. The store itself carries no
// data — data lives in the underlying runtime's regions (internal/legion).
//
// Stores carry the split reference-counting scheme of paper §5.1: references
// held by the application (library handles such as cunum.Array) are counted
// separately from references held by the runtime (pending tasks in the
// window or in flight). A store with zero application references can no
// longer be named by future tasks, which is one of the three conditions for
// temporary-store elimination (Definition 4).
type Store struct {
	id    StoreID
	shape []int
	name  string
	dtype DType

	appRefs atomic.Int64 // references held by the application / libraries
	runRefs atomic.Int64 // references held by the runtime (pending tasks)

	// Leading-axis block decomposition (see shard.go). shardCount <= 1
	// means unsharded; shardGen counts repartitions.
	shardCount atomic.Int64
	shardGen   atomic.Int64
}

// Factory allocates stores with unique IDs. It is the single source of
// store identity for one Diffuse runtime instance.
type Factory struct {
	next atomic.Int64
}

// NewStore creates a float64 store of the given shape with one application
// reference (held by the caller). name is used only for debugging output.
func (f *Factory) NewStore(name string, shape []int) *Store {
	return f.NewStoreTyped(name, shape, F64)
}

// NewStoreTyped creates a store with an explicit element type.
func (f *Factory) NewStoreTyped(name string, shape []int, dtype DType) *Store {
	s := &Store{
		id:    StoreID(f.next.Add(1)),
		shape: append([]int(nil), shape...),
		name:  name,
		dtype: dtype,
	}
	s.appRefs.Store(1)
	return s
}

// RestoreStore reconstructs a store with an explicit identity — the
// decode-side constructor of the distributed control stream, where store
// IDs are assigned by the parent's Factory and replicated to every rank
// (internal/dist). The store starts with one application reference, like
// a Factory-created one.
func RestoreStore(id StoreID, name string, shape []int, dtype DType) *Store {
	s := &Store{
		id:    id,
		shape: append([]int(nil), shape...),
		name:  name,
		dtype: dtype,
	}
	s.appRefs.Store(1)
	return s
}

// DType returns the store's element type.
func (s *Store) DType() DType { return s.dtype }

// ElemSize returns the width of one element in bytes.
func (s *Store) ElemSize() int { return s.dtype.Size() }

// SizeBytes returns the byte size of the store's canonical instance.
func (s *Store) SizeBytes() int { return s.Size() * s.dtype.Size() }

// ID returns the store's unique identifier.
func (s *Store) ID() StoreID { return s.id }

// Name returns the debug name given at creation.
func (s *Store) Name() string { return s.name }

// Shape returns the extents of the store. The returned slice must not be
// modified.
func (s *Store) Shape() []int { return s.shape }

// Rank returns the dimensionality of the store.
func (s *Store) Rank() int { return len(s.shape) }

// Bounds returns the rectangle [0, shape).
func (s *Store) Bounds() Rect { return RectFromShape(s.shape) }

// Size returns the total number of elements.
func (s *Store) Size() int {
	n := 1
	for _, e := range s.shape {
		n *= e
	}
	return n
}

// Strides returns the row-major element strides of the store's canonical
// layout.
func (s *Store) Strides() []int {
	st := make([]int, len(s.shape))
	acc := 1
	for d := len(s.shape) - 1; d >= 0; d-- {
		st[d] = acc
		acc *= s.shape[d]
	}
	return st
}

// RetainApp adds an application reference.
func (s *Store) RetainApp() { s.appRefs.Add(1) }

// ReleaseApp drops an application reference and reports whether any
// application references remain.
func (s *Store) ReleaseApp() (live bool) {
	n := s.appRefs.Add(-1)
	if n < 0 {
		panic(fmt.Sprintf("ir: store %d app refcount underflow", s.id))
	}
	return n > 0
}

// AppLive reports whether the application still holds references to the
// store (Definition 4, condition 3).
func (s *Store) AppLive() bool { return s.appRefs.Load() > 0 }

// RetainRuntime adds a runtime reference (a pending task argument).
func (s *Store) RetainRuntime() { s.runRefs.Add(1) }

// ReleaseRuntime drops a runtime reference.
func (s *Store) ReleaseRuntime() {
	if s.runRefs.Add(-1) < 0 {
		panic(fmt.Sprintf("ir: store %d runtime refcount underflow", s.id))
	}
}

// RuntimeRefs returns the current number of runtime references.
func (s *Store) RuntimeRefs() int64 { return s.runRefs.Load() }

// Dead reports whether neither the application nor the runtime reference
// the store, i.e. its region may be reclaimed.
func (s *Store) Dead() bool {
	return s.appRefs.Load() == 0 && s.runRefs.Load() == 0
}

// String implements fmt.Stringer.
func (s *Store) String() string {
	return fmt.Sprintf("Store(%d %q %v %s)", s.id, s.name, s.shape, s.dtype)
}

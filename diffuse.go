// Package diffuse is a Go implementation of Diffuse — the dynamic task-
// and kernel-fusion layer for distributed task-based runtime systems from
// "Composing Distributed Computations Through Task and Kernel Fusion"
// (Yadav et al., ASPLOS 2025) — together with every substrate it needs:
// a Legion-like task runtime, a calibrated cluster cost model, a kernel IR
// with a JIT-style compiler, and NumPy/SciPy-flavoured distributed array
// libraries (packages cunum and sparse) that issue tasks into it.
//
// Quick start:
//
//	rt := diffuse.New(diffuse.DefaultConfig(8))
//	ctx := cunum.NewContext(rt)
//	x := ctx.Random(1, 1<<20)
//	y := x.MulC(2).AddC(1).Sqrt().Keep()   // one fused kernel, one pass
//	nrm := y.Norm().Future()               // deferred read: nothing flushes
//	fmt.Println(nrm.Value())               // forces only the norm's deps
//
// Scalar read-backs are deferred: reductions return arrays that chain into
// the task window, and Future handles force only their dependency closure
// when the value is demanded — iterative solvers check convergence without
// tearing the fusion window down. Concurrent submitters each open a
// Session (rt.NewSession + cunum.NewSessionContext): one ordered task
// stream and private fusion window per goroutine, over shared stores.
//
// See DESIGN.md for the architecture and internal/bench for the
// reproduction of the paper's evaluation.
package diffuse

import (
	"diffuse/internal/core"
	"diffuse/internal/dist"
	"diffuse/internal/legion"
	"diffuse/internal/machine"
)

// Runtime is a Diffuse instance: it buffers index tasks into a window,
// fuses the fusible prefixes, eliminates distributed temporaries, memoizes
// its analysis over isomorphic task streams, and forwards optimized tasks
// to the underlying runtime.
type Runtime = core.Runtime

// Config controls fusion behaviour, execution mode, and the simulated
// machine.
type Config = core.Config

// Stats exposes the runtime's accounting counters.
type Stats = core.Stats

// Session is one ordered task stream into a shared Runtime: each session
// owns a private fusion window, so independent goroutines submit
// concurrently without interleaving inside one another's windows. Create
// one per goroutine with Runtime.NewSession and wrap it in a
// cunum.NewSessionContext.
type Session = core.Session

// MachineConfig holds the simulated-cluster constants.
type MachineConfig = machine.Config

// ExecPolicy selects the real-mode executor implementation.
type ExecPolicy = legion.ExecPolicy

// ExecStats counts real-mode executor activity (inline vs pooled tasks,
// chunks claimed, steals); read it via rt.Legion().ExecStats().
type ExecStats = legion.ExecStats

// ShardStats counts sharded-execution activity (groups drained, stages,
// halo exchanges, deferred frees) when Config.Shards > 1; read it via
// rt.Legion().ShardStatsSnapshot().
type ShardStats = legion.ShardStats

// WavefrontMode selects the sharded drain scheduler (Config.Wavefront).
type WavefrontMode = legion.WavefrontMode

// CodegenMode selects the kernel execution backend (Config.Codegen).
type CodegenMode = legion.CodegenMode

// CodegenStats counts codegen-backend activity (tasks on each backend,
// program-cache hits/misses); read it via
// rt.Legion().CodegenStatsSnapshot().
type CodegenStats = legion.CodegenStats

// FeedbackMode selects feedback-directed scheduling (Config.Feedback).
type FeedbackMode = legion.FeedbackMode

// CalibrationStats aggregates online cost-calibration activity (classes,
// timed samples, calibrated-estimate hits, interpreter reroutes); read it
// via rt.Legion().CalibrationStatsOf().
type CalibrationStats = legion.CalibrationStats

// CalibrationEntry is one calibration class's measured-vs-predicted
// state; rt.Legion().CalibrationSnapshot() returns the full table.
type CalibrationEntry = legion.CalibrationEntry

// Real-mode executor policies.
const (
	// ExecChunked (default) schedules point tasks on a persistent,
	// NumCPU-sized worker pool in cost-model-sized chunks with work
	// stealing.
	ExecChunked = legion.ExecChunked
	// ExecPerPoint spawns one goroutine per point task (the v1 executor,
	// kept as the measured baseline of BENCH_real.json).
	ExecPerPoint = legion.ExecPerPoint
)

// Sharded drain schedulers (Config.Wavefront; only meaningful when
// Config.Shards > 1).
const (
	// WavefrontOn (default) drains shard groups through the per-(shard,
	// stage) dependence DAG: a shard's next stage waits only on its own
	// previous stage plus the specific neighbor halo sends it consumes.
	WavefrontOn = legion.WavefrontOn
	// WavefrontOff drains with global stage barriers (the v1 scheduler,
	// kept as the measured baseline of the wavefront benchmark rows).
	WavefrontOff = legion.WavefrontOff
)

// Kernel execution backends (Config.Codegen; ModeReal only).
const (
	// CodegenOn (default) runs element loops and large dense matvecs
	// through the compiled-kernel closure tier.
	CodegenOn = legion.CodegenOn
	// CodegenOff runs every kernel on the register interpreter — the
	// bit-identical reference backend the benchmark's codegen rows
	// measure against.
	CodegenOff = legion.CodegenOff
)

// Feedback-directed scheduling modes (Config.Feedback; ModeReal only).
const (
	// FeedbackOn (default) calibrates chunk sizing, inline routing, the
	// backend pick, and the wavefront dispatch order from sampled online
	// timings. Results stay bit-identical; only schedule shape moves.
	FeedbackOn = legion.FeedbackOn
	// FeedbackOff prices every schedule decision from the static machine
	// model — the deterministic-schedule switch.
	FeedbackOff = legion.FeedbackOff
)

// Execution modes.
const (
	// ModeReal executes point tasks in parallel over real buffers.
	ModeReal = legion.ModeReal
	// ModeSim drives the cluster cost model without allocating data
	// (weak-scaling studies).
	ModeSim = legion.ModeSim
)

// New creates a Diffuse runtime.
func New(cfg Config) *Runtime { return core.New(cfg) }

// DefaultConfig returns a fused, real-execution configuration decomposing
// work across procs processors.
func DefaultConfig(procs int) Config { return core.DefaultConfig(procs) }

// DistributedConfig returns a real-execution configuration that runs as
// ranks cooperating rank processes (Config.Ranks): the runtime becomes
// the parent of a process-per-shard distributed runtime whose rank r owns
// shard r. Results are bit-identical to the in-process Shards=ranks
// configuration. Binaries using it must call MaybeRankMain first thing in
// main() and Runtime.Close when done.
//
// The peer transport is selectable through Config.Transport: "unix"
// (single-host socket files, the default) or "tcp" (loopback, or the
// interface named by DIFFUSE_DIST_BIND). Results are bit-identical
// across transports; leaving it empty falls back to
// DIFFUSE_DIST_TRANSPORT and then to unix.
func DistributedConfig(ranks int) Config {
	cfg := core.DefaultConfig(ranks)
	cfg.Ranks = ranks
	return cfg
}

// MaybeRankMain re-enters this process as a rank of a distributed runtime
// when it was launched as one (never returning in that case), and is a
// no-op otherwise. Every binary that creates a Runtime with Config.Ranks
// > 1 must call it before anything else in main() — the parent launches
// rank subprocesses by re-executing its own binary.
func MaybeRankMain() { dist.MaybeRankMain() }

// SimConfig returns a simulated-execution configuration on a modeled
// A100 cluster with the given number of GPUs.
func SimConfig(gpus int) Config {
	cfg := core.DefaultConfig(gpus)
	cfg.Mode = legion.ModeSim
	return cfg
}

// A100Machine returns the calibrated machine constants used by the
// paper-reproduction experiments.
func A100Machine(gpus int) MachineConfig { return machine.DefaultA100(gpus) }

#!/usr/bin/env bash
# Markdown link checker for the docs CI job.
#
# Validates, for README.md, DESIGN.md, ROADMAP.md, and docs/*.md:
#   - relative file links point at files that exist;
#   - intra-page `#anchor` fragments match a real heading of the page;
#   - cross-page `file.md#anchor` fragments match a real heading of the
#     target file.
# Anchors are compared against GitHub's heading slugs (lowercase, backticks
# and punctuation stripped, spaces to dashes; a trailing -N disambiguator
# for duplicated headings is accepted). External URLs are skipped — CI must
# not depend on the network.
set -u

# slugs_of FILE: print the GitHub anchor slug of every heading, skipping
# fenced code blocks (a `# comment` inside a fence is not a heading).
slugs_of() {
  awk 'BEGIN{f=0}
       /^(```|~~~)/{f=!f; next}
       f{next}
       /^#+ /{print}' "$1" |
    sed -E 's/^#+ +//; s/`//g' |
    tr '[:upper:]' '[:lower:]' |
    sed -E 's/[^a-z0-9 _-]//g; s/ /-/g'
}

fail=0
for f in README.md DESIGN.md ROADMAP.md docs/*.md; do
  [ -e "$f" ] || continue
  dir=$(dirname "$f")
  # while read (not an unquoted for) so links with spaces — e.g. a
  # [text](file.md "Title") form — survive as one token; the title part
  # is then stripped.
  while IFS= read -r link; do
    case "$link" in
      http://* | https://* | mailto:*) continue ;;
    esac
    link=${link%% \"*}
    path=${link%%#*}
    frag=""
    case "$link" in
      *#*) frag=${link#*#} ;;
    esac
    if [ -n "$path" ] && [ ! -e "$dir/$path" ]; then
      echo "$f: broken link -> $path"
      fail=1
      continue
    fi
    if [ -n "$frag" ]; then
      if [ -n "$path" ]; then
        target="$dir/$path"
      else
        target="$f"
      fi
      case "$target" in
        *.md) ;;
        *) continue ;; # fragments into non-markdown targets are not checked
      esac
      base=$(printf '%s' "$frag" | sed -E 's/-[0-9]+$//')
      if ! slugs_of "$target" | grep -qxF -e "$frag" -e "$base"; then
        echo "$f: broken anchor -> $link (no heading slugs to '$frag' in $target)"
        fail=1
      fi
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done
exit $fail
